#include "overlay/multiway_overlay.h"

#include "util/check.h"

namespace baton {
namespace overlay {

MultiwayOverlay::MultiwayOverlay(const multiway::MultiwayConfig& cfg,
                                 uint64_t seed)
    : tree_(std::make_unique<multiway::MultiwayNetwork>(cfg, &net_, seed)) {}

const std::string& MultiwayOverlay::name() const {
  static const std::string kName = "multiway";
  return kName;
}

PeerId MultiwayOverlay::RetryOrigin(PeerId origin, int attempt) const {
  const multiway::MultiwayNode& n = tree_->node(origin);
  if (!n.in_overlay) return origin;
  PeerId cand[3];
  int cnt = 0;
  for (PeerId p : {n.left_nb, n.right_nb, n.parent}) {
    if (p != kNullPeer && tree_->node(p).in_overlay && net_.IsAlive(p)) {
      cand[cnt++] = p;
    }
  }
  if (cnt == 0) return origin;
  return cand[(attempt - 1) % cnt];
}

bool MultiwayOverlay::RouteHint(PeerId peer, uint64_t* lo,
                                uint64_t* hi) const {
  const multiway::MultiwayNode& n = tree_->node(peer);
  if (!n.in_overlay || n.range.lo >= n.range.hi) return false;
  *lo = static_cast<uint64_t>(n.range.lo);
  *hi = static_cast<uint64_t>(n.range.hi);
  return true;
}

namespace {

/// Every node already maintains its subtree extent, so the fast-table is a
/// direct read of the top levels.
void CollectMultiwaySubtree(const multiway::MultiwayNetwork& mw, PeerId p,
                            int depth, int levels,
                            std::vector<cache::FastEntry>* out) {
  const multiway::MultiwayNode& n = mw.node(p);
  if (n.extent.lo < n.extent.hi) {
    out->push_back({static_cast<uint64_t>(n.extent.lo),
                    static_cast<uint64_t>(n.extent.hi), p, depth});
  }
  if (depth + 1 >= levels) return;
  for (PeerId c : n.children) {
    CollectMultiwaySubtree(mw, c, depth + 1, levels, out);
  }
}

}  // namespace

void MultiwayOverlay::CollectFastTable(
    int levels, std::vector<cache::FastEntry>* out) const {
  if (levels <= 0 || tree_->size() == 0) return;
  // Climb to the root from any member (the backend keeps it private).
  std::vector<PeerId> ms = tree_->Members();
  if (ms.empty()) return;
  PeerId root = ms.front();
  while (tree_->node(root).parent != kNullPeer) {
    root = tree_->node(root).parent;
  }
  CollectMultiwaySubtree(*tree_, root, 0, levels, out);
}

PeerId MultiwayOverlay::DoBootstrap() { return tree_->Bootstrap(); }

void MultiwayOverlay::DoJoin(PeerId contact, OpStats* st) {
  Result<PeerId> r = tree_->Join(contact);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value();
  // The joiner's range was split off an existing member: routes covering it
  // now point at the wrong peer.
  uint64_t lo = 0;
  uint64_t hi = 0;
  if (route_cache() != nullptr && RouteHint(st->peer, &lo, &hi)) {
    CacheInvalidateRange(lo, hi);
  }
}

void MultiwayOverlay::DoLeave(PeerId leaver, OpStats* st) {
  uint64_t lo = 0;
  uint64_t hi = 0;
  const bool hinted =
      route_cache() != nullptr && RouteHint(leaver, &lo, &hi);
  st->status = tree_->Leave(leaver);
  if (st->ok()) {
    if (hinted) CacheInvalidateRange(lo, hi);
    CacheInvalidatePeer(leaver);
  }
}

void MultiwayOverlay::DoInsert(PeerId from, Key key, OpStats* st) {
  st->status = tree_->Insert(from, key);
}

void MultiwayOverlay::DoDelete(PeerId from, Key key, OpStats* st) {
  st->status = tree_->Delete(from, key);
}

void MultiwayOverlay::DoExactSearch(PeerId from, Key key, OpStats* st) {
  auto r = tree_->ExactSearch(from, key);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value().node;
  st->found = r.value().found;
  st->hops = r.value().hops;
}

void MultiwayOverlay::DoRangeSearch(PeerId from, Key lo, Key hi,
                                    OpStats* st) {
  auto r = tree_->RangeSearch(from, lo, hi);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->nodes = r.value().nodes.size();
  st->matches = r.value().matches;
  st->hops = r.value().hops;
  st->found = r.value().matches > 0;
}

multiway::MultiwayNetwork& MultiwayBackend(Overlay& ov) {
  auto* adapter = dynamic_cast<MultiwayOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the multiway backend";
  return adapter->multiway();
}

const multiway::MultiwayNetwork& MultiwayBackend(const Overlay& ov) {
  const auto* adapter = dynamic_cast<const MultiwayOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the multiway backend";
  return adapter->multiway();
}

}  // namespace overlay
}  // namespace baton
