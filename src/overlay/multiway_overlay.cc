#include "overlay/multiway_overlay.h"

#include "util/check.h"

namespace baton {
namespace overlay {

MultiwayOverlay::MultiwayOverlay(const multiway::MultiwayConfig& cfg,
                                 uint64_t seed)
    : tree_(std::make_unique<multiway::MultiwayNetwork>(cfg, &net_, seed)) {}

const std::string& MultiwayOverlay::name() const {
  static const std::string kName = "multiway";
  return kName;
}

PeerId MultiwayOverlay::RetryOrigin(PeerId origin, int attempt) const {
  const multiway::MultiwayNode& n = tree_->node(origin);
  if (!n.in_overlay) return origin;
  PeerId cand[3];
  int cnt = 0;
  for (PeerId p : {n.left_nb, n.right_nb, n.parent}) {
    if (p != kNullPeer && tree_->node(p).in_overlay && net_.IsAlive(p)) {
      cand[cnt++] = p;
    }
  }
  if (cnt == 0) return origin;
  return cand[(attempt - 1) % cnt];
}

PeerId MultiwayOverlay::DoBootstrap() { return tree_->Bootstrap(); }

void MultiwayOverlay::DoJoin(PeerId contact, OpStats* st) {
  Result<PeerId> r = tree_->Join(contact);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value();
}

void MultiwayOverlay::DoLeave(PeerId leaver, OpStats* st) {
  st->status = tree_->Leave(leaver);
}

void MultiwayOverlay::DoInsert(PeerId from, Key key, OpStats* st) {
  st->status = tree_->Insert(from, key);
}

void MultiwayOverlay::DoDelete(PeerId from, Key key, OpStats* st) {
  st->status = tree_->Delete(from, key);
}

void MultiwayOverlay::DoExactSearch(PeerId from, Key key, OpStats* st) {
  auto r = tree_->ExactSearch(from, key);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value().node;
  st->found = r.value().found;
  st->hops = r.value().hops;
}

void MultiwayOverlay::DoRangeSearch(PeerId from, Key lo, Key hi,
                                    OpStats* st) {
  auto r = tree_->RangeSearch(from, lo, hi);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->nodes = r.value().nodes.size();
  st->matches = r.value().matches;
  st->hops = r.value().hops;
  st->found = r.value().matches > 0;
}

multiway::MultiwayNetwork& MultiwayBackend(Overlay& ov) {
  auto* adapter = dynamic_cast<MultiwayOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the multiway backend";
  return adapter->multiway();
}

const multiway::MultiwayNetwork& MultiwayBackend(const Overlay& ov) {
  const auto* adapter = dynamic_cast<const MultiwayOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the multiway backend";
  return adapter->multiway();
}

}  // namespace overlay
}  // namespace baton
