// overlay::Overlay adapter over the Chord baseline. Registered as "chord".
//
// Chord supports only the universal core: no range queries (hashing
// destroys key order), no failure-recovery protocol in this baseline, no
// load balancing (hashing spreads keys by construction).
#ifndef BATON_OVERLAY_CHORD_OVERLAY_H_
#define BATON_OVERLAY_CHORD_OVERLAY_H_

#include <memory>

#include "chord/chord_network.h"
#include "overlay/overlay.h"

namespace baton {
namespace overlay {

class ChordOverlay : public Overlay {
 public:
  explicit ChordOverlay(uint64_t seed);

  const std::string& name() const override;
  uint32_t capabilities() const override { return 0; }
  net::Network* network() override { return &net_; }
  const net::Network* network() const override { return &net_; }

  size_t size() const override { return ring_->size(); }
  std::vector<PeerId> Members() const override { return ring_->members(); }
  uint64_t total_keys() const override { return ring_->total_keys(); }
  void CheckInvariants() const override { ring_->CheckInvariants(); }
  uint64_t build_salt() const override { return 0xc08d; }

  /// Stale-route fallback: alternate between the origin's successor and
  /// predecessor ring links.
  PeerId RetryOrigin(PeerId origin, int attempt) const override;

  /// Cache support lives in hash space: the routing coordinate is
  /// HashKey(key), a member's hint interval is its circular ownership arc
  /// (predecessor, chord_id], and the fast-table is a 2^levels-arc finger
  /// prefix of the ring (arc start -> its successor).
  uint64_t RouteCoordOf(Key key) const override;
  bool RouteHint(PeerId peer, uint64_t* lo, uint64_t* hi) const override;
  void CollectFastTable(int levels,
                        std::vector<cache::FastEntry>* out) const override;
  bool CacheLocalAnswer(PeerId owner, Key key, OpStats* st) override;

  chord::ChordNetwork& chord() { return *ring_; }
  const chord::ChordNetwork& chord() const { return *ring_; }

 protected:
  PeerId DoBootstrap() override;
  void DoJoin(PeerId contact, OpStats* st) override;
  void DoLeave(PeerId leaver, OpStats* st) override;
  void DoInsert(PeerId from, Key key, OpStats* st) override;
  void DoDelete(PeerId from, Key key, OpStats* st) override;
  void DoExactSearch(PeerId from, Key key, OpStats* st) override;

 private:
  net::Network net_;
  std::unique_ptr<chord::ChordNetwork> ring_;
};

/// Checked downcast; CHECK-fails when `ov` is not the chord backend.
chord::ChordNetwork& ChordBackend(Overlay& ov);
const chord::ChordNetwork& ChordBackend(const Overlay& ov);

}  // namespace overlay
}  // namespace baton

#endif  // BATON_OVERLAY_CHORD_OVERLAY_H_
