// Name-keyed overlay factory. overlay::Make("baton", cfg) constructs a
// ready-to-bootstrap backend (each owns its own net::Network); benches and
// tests sweep RegisteredNames() to run every backend through the same
// driver. New backends (e.g. the ART or D3-Tree trees from PAPERS.md) call
// Register() once and every generic bench picks them up.
#ifndef BATON_OVERLAY_REGISTRY_H_
#define BATON_OVERLAY_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baton/baton_network.h"
#include "d3tree/d3tree_network.h"
#include "multiway/multiway_network.h"
#include "overlay/overlay.h"

namespace baton {
namespace overlay {

/// Per-backend construction parameters; each backend reads only its own
/// section (plus `seed`). Defaults reproduce the paper's setup.
struct Config {
  uint64_t seed = 1;
  /// "baton": full BatonConfig (domain, load balancing, replication, ...).
  BatonConfig baton;
  /// "multiway": domain and fan-out.
  multiway::MultiwayConfig multiway;
  /// "d3tree": domain and bucket (cluster) sizing.
  d3tree::D3Config d3tree;
};

using Factory =
    std::function<std::unique_ptr<Overlay>(const Config& cfg)>;

/// Registers `factory` under `name`; a later registration for the same name
/// replaces the earlier one. "baton", "chord" and "multiway" are built in.
void Register(const std::string& name, Factory factory);

/// Constructs the backend registered under `name`, or nullptr if unknown.
std::unique_ptr<Overlay> Make(const std::string& name,
                              const Config& cfg = {});

bool IsRegistered(const std::string& name);

/// All registered backend names, sorted.
std::vector<std::string> RegisteredNames();

}  // namespace overlay
}  // namespace baton

#endif  // BATON_OVERLAY_REGISTRY_H_
