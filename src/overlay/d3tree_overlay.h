// overlay::Overlay adapter over the D3-Tree backend. Registered as
// "d3tree". Order-preserving (range queries, content-median splits during
// growth), with cluster-local failure recovery and the deterministic
// bucket/backbone load balancer -- the first backend written against the
// unified API rather than adapted to it.
#ifndef BATON_OVERLAY_D3TREE_OVERLAY_H_
#define BATON_OVERLAY_D3TREE_OVERLAY_H_

#include <memory>

#include "d3tree/d3tree_network.h"
#include "overlay/overlay.h"

namespace baton {
namespace overlay {

class D3TreeOverlay : public Overlay {
 public:
  D3TreeOverlay(const d3tree::D3Config& cfg, uint64_t seed);

  const std::string& name() const override;
  uint32_t capabilities() const override {
    return kRangeSearch | kOrderedGrowth | kLoadBalance | kFailRecovery;
  }
  net::Network* network() override { return &net_; }
  const net::Network* network() const override { return &net_; }

  size_t size() const override { return tree_->size(); }
  std::vector<PeerId> Members() const override { return tree_->Members(); }
  uint64_t total_keys() const override { return tree_->total_keys(); }
  void CheckInvariants() const override { tree_->CheckInvariants(); }
  uint64_t build_salt() const override { return 0xd37e; }

  /// The wrapped backend, for D3-specific introspection (bucket bounds,
  /// backbone shape, rebuild counters).
  /// Stale-route fallback: alternate between the origin's in-order
  /// adjacent peers (all long-distance state lives on the backbone, so
  /// adjacency is the only per-peer link to fall back on).
  PeerId RetryOrigin(PeerId origin, int attempt) const override;

  /// Cache support: a member's hint interval is its direct key range; the
  /// fast-table replicates the top backbone buckets (extent -> the bucket
  /// representative, which holds the routing state a jump lands on).
  bool RouteHint(PeerId peer, uint64_t* lo, uint64_t* hi) const override;
  void CollectFastTable(int levels,
                        std::vector<cache::FastEntry>* out) const override;

  d3tree::D3TreeNetwork& d3tree() { return *tree_; }
  const d3tree::D3TreeNetwork& d3tree() const { return *tree_; }

 protected:
  PeerId DoBootstrap() override;
  void DoJoin(PeerId contact, OpStats* st) override;
  void DoLeave(PeerId leaver, OpStats* st) override;
  void DoFail(PeerId victim, OpStats* st) override;
  void DoRecoverAllFailures(OpStats* st) override;
  void DoInsert(PeerId from, Key key, OpStats* st) override;
  void DoDelete(PeerId from, Key key, OpStats* st) override;
  void DoExactSearch(PeerId from, Key key, OpStats* st) override;
  void DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) override;

 private:
  net::Network net_;
  std::unique_ptr<d3tree::D3TreeNetwork> tree_;
};

/// Checked downcast; CHECK-fails when `ov` is not the d3tree backend.
d3tree::D3TreeNetwork& D3TreeBackend(Overlay& ov);
const d3tree::D3TreeNetwork& D3TreeBackend(const Overlay& ov);

}  // namespace overlay
}  // namespace baton

#endif  // BATON_OVERLAY_D3TREE_OVERLAY_H_
