// overlay::Overlay adapter over the multiway-tree baseline. Registered as
// "multiway". Order-preserving (range queries work, preload-during-growth
// splits at the content median) but has no failure-recovery protocol and no
// load balancing -- the brittleness section III-D contrasts BATON against.
#ifndef BATON_OVERLAY_MULTIWAY_OVERLAY_H_
#define BATON_OVERLAY_MULTIWAY_OVERLAY_H_

#include <memory>

#include "multiway/multiway_network.h"
#include "overlay/overlay.h"

namespace baton {
namespace overlay {

class MultiwayOverlay : public Overlay {
 public:
  MultiwayOverlay(const multiway::MultiwayConfig& cfg, uint64_t seed);

  const std::string& name() const override;
  uint32_t capabilities() const override {
    return kRangeSearch | kOrderedGrowth;
  }
  net::Network* network() override { return &net_; }
  const net::Network* network() const override { return &net_; }

  size_t size() const override { return tree_->size(); }
  std::vector<PeerId> Members() const override { return tree_->Members(); }
  uint64_t total_keys() const override { return tree_->total_keys(); }
  void CheckInvariants() const override { tree_->CheckInvariants(); }
  uint64_t build_salt() const override { return 0x3712; }

  /// Stale-route fallback: cycle through the origin's range-adjacent
  /// neighbours, then its parent.
  PeerId RetryOrigin(PeerId origin, int attempt) const override;

  /// Cache support: a member's hint interval is its direct key range; the
  /// fast-table replicates the top tree levels using the subtree extents
  /// every node already maintains.
  bool RouteHint(PeerId peer, uint64_t* lo, uint64_t* hi) const override;
  void CollectFastTable(int levels,
                        std::vector<cache::FastEntry>* out) const override;

  multiway::MultiwayNetwork& multiway() { return *tree_; }
  const multiway::MultiwayNetwork& multiway() const { return *tree_; }

 protected:
  PeerId DoBootstrap() override;
  void DoJoin(PeerId contact, OpStats* st) override;
  void DoLeave(PeerId leaver, OpStats* st) override;
  void DoInsert(PeerId from, Key key, OpStats* st) override;
  void DoDelete(PeerId from, Key key, OpStats* st) override;
  void DoExactSearch(PeerId from, Key key, OpStats* st) override;
  void DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) override;

 private:
  net::Network net_;
  std::unique_ptr<multiway::MultiwayNetwork> tree_;
};

/// Checked downcast; CHECK-fails when `ov` is not the multiway backend.
multiway::MultiwayNetwork& MultiwayBackend(Overlay& ov);
const multiway::MultiwayNetwork& MultiwayBackend(const Overlay& ov);

}  // namespace overlay
}  // namespace baton

#endif  // BATON_OVERLAY_MULTIWAY_OVERLAY_H_
