// overlay::Overlay adapter over BatonNetwork. Registered as "baton".
#ifndef BATON_OVERLAY_BATON_OVERLAY_H_
#define BATON_OVERLAY_BATON_OVERLAY_H_

#include <memory>

#include "baton/baton_network.h"
#include "overlay/overlay.h"

namespace baton {
namespace overlay {

class BatonOverlay : public Overlay {
 public:
  BatonOverlay(const BatonConfig& cfg, uint64_t seed);

  const std::string& name() const override;
  uint32_t capabilities() const override;
  net::Network* network() override { return &net_; }
  const net::Network* network() const override { return &net_; }

  size_t size() const override { return baton_->size(); }
  std::vector<PeerId> Members() const override { return baton_->Members(); }
  uint64_t total_keys() const override { return baton_->total_keys(); }
  void CheckInvariants() const override { baton_->CheckInvariants(); }
  uint64_t build_salt() const override { return 0xba70; }

  /// Stale-route fallback: cycle through the origin's adjacent links (the
  /// paper's repair paths re-derive structure from in-order adjacency),
  /// then its parent.
  PeerId RetryOrigin(PeerId origin, int attempt) const override;

  /// Cache support: a member's hint interval is its key range; the
  /// fast-table replicates the top tree levels, each entry spanning the
  /// node's whole subtree (leftmost descendant's lo to rightmost's hi).
  bool RouteHint(PeerId peer, uint64_t* lo, uint64_t* hi) const override;
  void CollectFastTable(int levels,
                        std::vector<cache::FastEntry>* out) const override;

  /// The wrapped backend, for BATON-specific introspection (tree positions,
  /// shift-size histogram, load-balance and durability counters).
  BatonNetwork& baton() { return *baton_; }
  const BatonNetwork& baton() const { return *baton_; }

 protected:
  PeerId DoBootstrap() override;
  void DoJoin(PeerId contact, OpStats* st) override;
  void DoLeave(PeerId leaver, OpStats* st) override;
  void DoFail(PeerId victim, OpStats* st) override;
  void DoRecoverAllFailures(OpStats* st) override;
  void DoInsert(PeerId from, Key key, OpStats* st) override;
  void DoDelete(PeerId from, Key key, OpStats* st) override;
  void DoExactSearch(PeerId from, Key key, OpStats* st) override;
  void DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) override;

 private:
  net::Network net_;
  std::unique_ptr<BatonNetwork> baton_;
};

/// Checked downcast to the BATON backend for benches/tests that read
/// BATON-specific state through the generic interface. CHECK-fails when
/// `ov` is some other backend.
BatonNetwork& BatonBackend(Overlay& ov);
const BatonNetwork& BatonBackend(const Overlay& ov);

}  // namespace overlay
}  // namespace baton

#endif  // BATON_OVERLAY_BATON_OVERLAY_H_
