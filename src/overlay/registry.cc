#include "overlay/registry.h"

#include <map>

#include "overlay/baton_overlay.h"
#include "overlay/chord_overlay.h"
#include "overlay/d3tree_overlay.h"
#include "overlay/multiway_overlay.h"

namespace baton {
namespace overlay {

namespace {

// Builtins are seeded here rather than via static registrar objects in the
// adapter translation units: those initializers would be silently dropped
// when the static library's unreferenced objects are not linked in.
std::map<std::string, Factory>& Registry() {
  static std::map<std::string, Factory> registry = {
      {"baton",
       [](const Config& cfg) -> std::unique_ptr<Overlay> {
         return std::make_unique<BatonOverlay>(cfg.baton, cfg.seed);
       }},
      {"chord",
       [](const Config& cfg) -> std::unique_ptr<Overlay> {
         return std::make_unique<ChordOverlay>(cfg.seed);
       }},
      {"d3tree",
       [](const Config& cfg) -> std::unique_ptr<Overlay> {
         return std::make_unique<D3TreeOverlay>(cfg.d3tree, cfg.seed);
       }},
      {"multiway",
       [](const Config& cfg) -> std::unique_ptr<Overlay> {
         return std::make_unique<MultiwayOverlay>(cfg.multiway, cfg.seed);
       }},
  };
  return registry;
}

}  // namespace

void Register(const std::string& name, Factory factory) {
  Registry()[name] = std::move(factory);
}

std::unique_ptr<Overlay> Make(const std::string& name, const Config& cfg) {
  auto& registry = Registry();
  auto it = registry.find(name);
  if (it == registry.end()) return nullptr;
  return it->second(cfg);
}

bool IsRegistered(const std::string& name) {
  return Registry().count(name) != 0;
}

std::vector<std::string> RegisteredNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, factory] : Registry()) names.push_back(name);
  return names;
}

}  // namespace overlay
}  // namespace baton
